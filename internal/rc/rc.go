// Package rc implements deferred reference counting in the style of CDRC
// (Anderson, Blelloch, Wei — PLDI 2021/2022), the "RC" scheme of the HP++
// paper's evaluation, using EBR as the underlying deferral mechanism.
//
// Each node carries a strong count of incoming heap links. Writers adjust
// counts eagerly when creating links but *defer* decrements through EBR:
// when a link to a node is destroyed, a decrement task is retired, and it
// executes only after every reader that was pinned at the time has
// finished. Readers therefore never touch counts at all — the property
// that makes CDRC competitive with semi-manual schemes. When a deferred
// decrement drops a count to zero the node is freed and its outgoing links
// (reported by Object.Trace) are decremented transitively.
//
// Reference cycles must be broken by the client (the paper omits the EFRB
// tree for RC for exactly this reason).
package rc

import (
	"github.com/gosmr/gosmr/internal/ebr"
	"github.com/gosmr/gosmr/internal/smr"
)

// Object is implemented by data-structure pool wrappers: it gives the
// scheme access to a node type's strong count, outgoing links, and
// deallocation.
type Object interface {
	smr.Deallocator
	// IncCount adds one strong reference to ref.
	IncCount(ref uint64)
	// DecCount removes one strong reference and returns the new count.
	DecCount(ref uint64) int64
	// Trace appends ref's current outgoing strong references (untagged,
	// non-nil) to out and returns it. Called only on nodes whose count
	// has reached zero, whose links are therefore immutable.
	Trace(ref uint64, out []uint64) []uint64
}

// Domain is a deferred-reference-counting domain.
type Domain struct {
	e *ebr.Domain
}

// NewDomain creates an RC domain over a fresh EBR domain.
func NewDomain() *Domain { return &Domain{e: ebr.NewDomain()} }

// Unreclaimed returns the number of pending deferred decrements — the
// closest analogue of "retired but unreclaimed" for a counting scheme
// (the paper notes the metric is not well-defined for RC).
func (d *Domain) Unreclaimed() int64 { return d.e.Unreclaimed() }

// PeakUnreclaimed returns the peak pending-decrement count.
func (d *Domain) PeakUnreclaimed() int64 { return d.e.PeakUnreclaimed() }

// Stats returns the underlying EBR domain's snapshot relabelled "rc":
// RC's garbage flow *is* the flow of deferred decrements through EBR.
func (d *Domain) Stats() smr.Stats {
	st := d.e.Stats()
	st.Scheme = "rc"
	return st
}

// EBR exposes the underlying epoch domain (for tests).
func (d *Domain) EBR() *ebr.Domain { return d.e }

// DecTask adapts a deferred decrement on one Object to smr.Deallocator so
// it can ride EBR's retirement machinery. Create one per (domain, object)
// pair with NewDecTask and reuse it for every DeferDec.
type DecTask struct {
	d   *Domain
	obj Object
}

// NewDecTask returns the deferred-decrement adapter for obj.
func NewDecTask(d *Domain, obj Object) *DecTask { return &DecTask{d: d, obj: obj} }

// FreeRef executes the deferred decrement; it runs inside EBR reclamation,
// after every reader that could still reach ref has unpinned.
func (dt *DecTask) FreeRef(ref uint64) { runDec(dt.obj, ref) }

// runDec applies a decrement to ref and transitively releases any node
// whose count reaches zero. Transitive decrements are applied immediately:
// a child's count can only reach zero here if every other link to it was
// destroyed earlier, and those destructions' own deferral periods have
// already covered any reader that obtained the child through them.
func runDec(obj Object, ref uint64) {
	var stack [8]uint64
	work := append(stack[:0], ref)
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		if obj.DecCount(r) == 0 {
			work = obj.Trace(r, work)
			obj.FreeRef(r)
		}
	}
}

// Guard is a per-worker RC handle. It embeds an EBR guard: Pin/Unpin
// bracket read-side critical sections, and Track is a free no-op.
type Guard struct {
	*ebr.Guard
	d *Domain
}

// NewGuard returns a new per-worker guard.
func (d *Domain) NewGuard() *Guard {
	return &Guard{Guard: d.e.NewGuardEBR(), d: d}
}

// DeferDec schedules a decrement of ref's strong count to run after the
// current grace period.
func (g *Guard) DeferDec(dt *DecTask, ref uint64) {
	g.Guard.Retire(ref, dt)
}
