// Package tagptr packs node references and tag bits into single 64-bit
// link words so that (pointer, tags) pairs can be updated with one CAS,
// mirroring the tagged-pointer idiom of C/Rust lock-free data structures.
//
// A Ref is an opaque non-zero handle to an arena slot (see internal/arena);
// Ref 0 is the nil reference. A Word is a link-field value packing a Ref
// shifted left by 3 with up to three tag bits:
//
//	bit 0 (Mark):    logical deletion (Harris-style), or NM-tree "flag"
//	bit 1 (Flag):    second control bit (NM-tree "tag")
//	bit 2 (Invalid): HP++ invalidation
//
// The same packing doubles as the EFRB tree's update word, where the low
// bits hold an operation state and the upper bits a descriptor Ref.
package tagptr

// Ref is an opaque reference to an arena slot. Zero is nil.
type Ref = uint64

// Word is a packed link-field value: Ref<<3 | tags.
type Word = uint64

// Tag bits stored in the low three bits of a Word.
const (
	Mark    uint64 = 1 // logical deletion / NM-tree flag
	Flag    uint64 = 2 // NM-tree tag / secondary control bit
	Invalid uint64 = 4 // HP++ invalidation
	TagMask uint64 = 7

	shift = 3
)

// Pack builds a link word from a reference and tag bits.
func Pack(r Ref, tag uint64) Word { return r<<shift | (tag & TagMask) }

// RefOf extracts the reference, dropping all tags.
func RefOf(w Word) Ref { return w >> shift }

// TagOf extracts the tag bits.
func TagOf(w Word) uint64 { return w & TagMask }

// Split extracts both the reference and the tag bits.
func Split(w Word) (Ref, uint64) { return w >> shift, w & TagMask }

// WithTag returns w with the given tag bits set (OR-ed in).
func WithTag(w Word, tag uint64) Word { return w | (tag & TagMask) }

// WithoutTag returns w with all tag bits cleared.
func WithoutTag(w Word) Word { return w &^ TagMask }

// IsMarked reports whether the Mark bit is set.
func IsMarked(w Word) bool { return w&Mark != 0 }

// IsInvalid reports whether the Invalid bit is set.
func IsInvalid(w Word) bool { return w&Invalid != 0 }

// IsNil reports whether the word references nil (ignoring tags).
func IsNil(w Word) bool { return w>>shift == 0 }
