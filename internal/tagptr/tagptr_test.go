package tagptr

import (
	"testing"
	"testing/quick"
)

func TestPackSplitRoundTrip(t *testing.T) {
	cases := []struct {
		ref Ref
		tag uint64
	}{
		{0, 0}, {1, 0}, {1, Mark}, {42, Flag}, {42, Invalid},
		{1 << 30, Mark | Invalid}, {7, TagMask},
	}
	for _, c := range cases {
		w := Pack(c.ref, c.tag)
		r, tg := Split(w)
		if r != c.ref || tg != c.tag {
			t.Errorf("Pack(%d,%d) roundtrip = (%d,%d)", c.ref, c.tag, r, tg)
		}
	}
}

func TestPackSplitProperty(t *testing.T) {
	prop := func(ref uint64, tag uint8) bool {
		ref &= 1<<40 - 1 // arena refs fit in 40 bits
		tg := uint64(tag) & TagMask
		w := Pack(ref, tg)
		r, got := Split(w)
		return r == ref && got == tg && RefOf(w) == ref && TagOf(w) == tg
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagPredicates(t *testing.T) {
	w := Pack(9, 0)
	if IsMarked(w) || IsInvalid(w) || IsNil(w) {
		t.Fatalf("clean word misreported: %b", w)
	}
	if !IsMarked(WithTag(w, Mark)) {
		t.Error("Mark not detected")
	}
	if !IsInvalid(WithTag(w, Invalid)) {
		t.Error("Invalid not detected")
	}
	if !IsNil(Pack(0, Mark)) {
		t.Error("tagged nil should still be nil")
	}
}

func TestWithoutTagClearsAllTags(t *testing.T) {
	w := Pack(123, Mark|Flag|Invalid)
	if got := WithoutTag(w); got != Pack(123, 0) {
		t.Errorf("WithoutTag = %d, want %d", got, Pack(123, 0))
	}
}

func TestWithTagPreservesExisting(t *testing.T) {
	w := Pack(5, Mark)
	w = WithTag(w, Invalid)
	if TagOf(w) != Mark|Invalid {
		t.Errorf("tags = %b, want Mark|Invalid", TagOf(w))
	}
	if RefOf(w) != 5 {
		t.Errorf("ref corrupted: %d", RefOf(w))
	}
}

func TestTagMaskIgnoresHighBits(t *testing.T) {
	// Pack must not let oversized tag arguments corrupt the reference.
	w := Pack(77, 0xFF)
	if RefOf(w) != 77 || TagOf(w) != TagMask {
		t.Errorf("Pack(77, 0xFF) = ref %d tag %b", RefOf(w), TagOf(w))
	}
}
