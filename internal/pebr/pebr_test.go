package pebr

import (
	"testing"

	"github.com/gosmr/gosmr/internal/arena"
)

func TestRetireEventuallyFrees(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	g := d.NewGuardPEBR(2)
	g.Pin()
	ref, _ := p.Alloc()
	g.Retire(ref, p)
	g.Unpin()
	for i := 0; i < 6; i++ {
		g.Collect()
	}
	if p.Live(ref) {
		t.Fatal("retired node not freed")
	}
}

func TestLaggingThreadGetsEjected(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	lag := d.NewGuardPEBR(2)
	w := d.NewGuardPEBR(2)

	lag.Pin() // stalls
	w.Pin()
	w.Unpin()

	// Drive collections: epoch tries to advance; lag blocks it; after
	// Patience passes lag is ejected and reclamation proceeds.
	ref, _ := p.Alloc()
	w.Pin()
	w.Retire(ref, p)
	w.Unpin()
	for i := 0; i < 20; i++ {
		w.Pin()
		w.Unpin()
		w.Collect()
	}
	if d.Ejections() == 0 {
		t.Fatal("lagging thread was never ejected")
	}
	if !lag.Ejected() {
		t.Fatal("guard does not observe its own ejection")
	}
	if p.Live(ref) {
		t.Fatal("ejection did not unblock reclamation")
	}
	if lag.Track(0, 123) {
		t.Fatal("Track must fail after ejection")
	}
	// Recovery: re-pin clears the ejection.
	lag.Unpin()
	lag.Pin()
	if !lag.Track(0, 123) {
		t.Fatal("Track must succeed after re-pin")
	}
	lag.Unpin()
}

func TestShieldProtectsAcrossEjection(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeDetect)
	reader := d.NewGuardPEBR(2)
	w := d.NewGuardPEBR(2)

	ref, _ := p.Alloc()
	reader.Pin()
	if !reader.Track(0, ref) {
		t.Fatal("track failed unexpectedly")
	}

	w.Pin()
	w.Retire(ref, p)
	w.Unpin()
	for i := 0; i < 20; i++ {
		w.Pin()
		w.Unpin()
		w.Collect()
	}
	if !lagEjected(reader) {
		t.Fatal("reader should have been ejected by now")
	}
	// Even though the reader was ejected, its shield keeps ref alive.
	if !p.Live(ref) {
		t.Fatal("shielded node freed after ejection — PEBR safety broken")
	}

	// Once the shield moves on, the node can be reclaimed.
	reader.Unpin()
	reader.Pin()
	reader.Track(0, 0)
	reader.Unpin()
	for i := 0; i < 6; i++ {
		w.Collect()
	}
	if p.Live(ref) {
		t.Fatal("node not freed after shield released")
	}
}

func lagEjected(g *Guard) bool { return g.Ejected() }

func TestGarbageBoundedDespiteStall(t *testing.T) {
	// The robustness contrast with EBR: a stalled PEBR thread is ejected,
	// so garbage does not grow without bound.
	d := NewDomain()
	p := arena.NewPool[uint64]("t", arena.ModeReuse)
	stalled := d.NewGuardPEBR(2)
	stalled.Pin()

	w := d.NewGuardPEBR(2)
	const n = 5000
	for i := 0; i < n; i++ {
		w.Pin()
		ref, _ := p.Alloc()
		w.Retire(ref, p)
		w.Unpin()
	}
	w.Collect()
	if d.Unreclaimed() > 3*int64(DefaultCollectEvery)+int64(MaxShields) {
		t.Fatalf("unreclaimed = %d despite ejection; not robust", d.Unreclaimed())
	}
	if d.Ejections() == 0 {
		t.Fatal("stalled thread never ejected")
	}
}

// TestZeroValueDomainCollects is the regression test for zero-value
// &Domain{} literals: CollectEvery == 0 selects the adaptive cadence
// (historically it panicked with a zero modulus), and the epoch
// initializes lazily to NewDomain's starting value on first guard
// creation. (Zero Patience is legal — it only makes ejection immediate.)
func TestZeroValueDomainCollects(t *testing.T) {
	d := &Domain{}
	p := arena.NewPool[uint64]("zv", arena.ModeReuse)
	g := d.NewGuardPEBR(2)
	for i := 0; i < 2*DefaultCollectEvery; i++ {
		g.Pin()
		ref, _ := p.Alloc()
		g.Retire(ref, p)
		g.Unpin()
	}
	for i := 0; i < 6; i++ {
		g.Collect()
	}
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after collect = %d, want 0", got)
	}
	if got := d.epoch.Load(); got < 2 {
		t.Fatalf("zero-value domain epoch = %d, want lazy init to >= 2", got)
	}
}

// TestStatsEpochLagIsCachedAndCorrect is the regression test for the O(1)
// Stats snapshot: EpochLag must come from the minimum cached by Collect's
// record walk and agree with a fresh walk of the record list, both while
// a lagging guard holds the epoch back and after it releases it.
func TestStatsEpochLagIsCachedAndCorrect(t *testing.T) {
	d := NewDomain()
	d.CollectEvery = 1
	d.Patience = 1 << 30 // never eject: the lag must stay visible
	p := arena.NewPool[uint64]("lag", arena.ModeDetect)

	lag := d.NewGuardPEBR(2)
	lag.Pin() // pins the starting epoch and stays there

	w := d.NewGuardPEBR(2)
	for i := 0; i < 8; i++ {
		w.Pin()
		ref, _ := p.Alloc()
		w.Retire(ref, p) // CollectEvery=1: every retire runs a Collect
		w.Unpin()
	}

	walk := func() (e, min uint64) {
		e = d.epoch.Load()
		min = e
		for r := d.threads.Load(); r != nil; r = r.next {
			st := r.state.Load()
			if st&pinnedBit == 0 || st&ejectedBit != 0 {
				continue
			}
			if ep := st >> 2; ep < min {
				min = ep
			}
		}
		return e, min
	}

	st := d.Stats()
	e, min := walk()
	if want := e - min; st.EpochLag != want || want == 0 {
		t.Fatalf("EpochLag = %d, walk says %d (epoch %d, min %d); lag must be nonzero with a pinned straggler",
			st.EpochLag, want, e, min)
	}

	// Release the straggler: the next Collect advances the epoch and must
	// refresh the cache so the reported lag drops back to zero.
	lag.Unpin()
	w.Collect()
	st = d.Stats()
	if st.EpochLag != 0 {
		t.Fatalf("EpochLag = %d after the straggler unpinned and a Collect ran, want 0", st.EpochLag)
	}
}

// TestFinishReleasesRecordAndOrphans: a finished guard's record must be
// recyclable by the next guard and its leftover bag must be adopted (with
// retire epochs intact) and eventually freed by a survivor.
func TestFinishReleasesRecordAndOrphans(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("fin", arena.ModeDetect)

	g := d.NewGuardPEBR(1)
	g.Pin()
	ref, _ := p.Alloc()
	g.Retire(ref, p)
	g.Unpin()
	g.Finish() // the entry is too young to free inline -> orphaned

	if total, live := d.Records(); total != 1 || live != 0 {
		t.Fatalf("records after finish = (%d,%d), want (1,0)", total, live)
	}

	g2 := d.NewGuardPEBR(1)
	if total, live := d.Records(); total != 1 || live != 1 {
		t.Fatalf("record not recycled: (%d,%d), want (1,1)", total, live)
	}
	g2.Collect() // adopt the orphan
	for i := 0; i < 6; i++ {
		g2.Collect()
	}
	if p.Live(ref) {
		t.Fatal("orphaned entry never freed")
	}
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d", d.Unreclaimed())
	}
	g2.Finish()
}

// TestFinishReleasesShields: a guard that dies while announcing a shield
// must not pin the shielded node forever — Finish revokes the shield and
// the node becomes reclaimable.
func TestFinishReleasesShields(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("fin-shield", arena.ModeDetect)

	reader := d.NewGuardPEBR(1)
	reader.Pin()
	ref, _ := p.Alloc()
	if !reader.Track(0, ref) {
		t.Fatal("track failed with no ejection pending")
	}

	w := d.NewGuardPEBR(1)
	w.Pin()
	w.Retire(ref, p)
	w.Unpin()
	for i := 0; i < 10; i++ {
		w.Collect() // reader may get ejected, but its shield still protects
	}
	if !p.Live(ref) {
		t.Fatal("shielded node freed while its shield holder was live")
	}

	reader.Finish()
	for i := 0; i < 6; i++ {
		w.Collect()
	}
	if p.Live(ref) {
		t.Fatal("node not freed after its shield holder finished")
	}
	w.Finish()
	if d.Unreclaimed() != 0 {
		t.Fatalf("unreclaimed = %d", d.Unreclaimed())
	}
}

// TestGuardChurnRecyclesRecords: sequential guard churn (one guard per
// network connection, say) must recycle a single record instead of
// growing the record list with guards ever created.
func TestGuardChurnRecyclesRecords(t *testing.T) {
	d := NewDomain()
	p := arena.NewPool[uint64]("churn", arena.ModeReuse)
	for i := 0; i < 100; i++ {
		g := d.NewGuardPEBR(1)
		g.Pin()
		ref, _ := p.Alloc()
		g.Track(0, ref)
		g.Retire(ref, p)
		g.Unpin()
		g.Finish()
	}
	if total, live := d.Records(); total != 1 || live != 0 {
		t.Fatalf("sequential churn records = (%d,%d), want (1,0)", total, live)
	}
	g := d.NewGuardPEBR(1)
	for i := 0; i < 8; i++ {
		g.Collect()
	}
	g.Finish()
	if got := d.Unreclaimed(); got != 0 {
		t.Fatalf("unreclaimed after churn drain = %d", got)
	}
}
