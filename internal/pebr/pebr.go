// Package pebr implements pointer- and epoch-based reclamation (Kang &
// Jung, PLDI 2020): EBR made robust by *ejecting* (neutralizing) threads
// whose critical sections block epoch advancement.
//
// Reads proceed under an epoch pin as in EBR, but each traversal step also
// announces the next node in a per-thread shield slot and then validates
// that the thread has not been ejected. If it has, the step fails and the
// operation must restart; nodes already shielded remain protected across
// the ejection (reclaimers respect shields exactly like hazard pointers).
// Because ejection is coarse-grained — it kills the whole critical section
// rather than one pointer — long-running operations are repeatedly
// neutralized under reclamation pressure, the effect Figure 10 of the HP++
// paper measures.
package pebr

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gosmr/gosmr/internal/smr"
)

const (
	// DefaultCollectEvery is the number of retires between collections
	// under the fixed cadence; it doubles as the floor of the adaptive
	// threshold.
	DefaultCollectEvery = 128
	// DefaultPatience is how many collection passes may observe the same
	// thread lagging before it is ejected.
	DefaultPatience = 2
	// MaxShields is the number of shield slots per guard. Sized for the
	// deepest users: the skiplist (a pred and a succ per level) and the
	// Bonsai builder (one slot per tree level).
	MaxShields = 80
)

// rec state word: epoch<<2 | pinned | ejected.
const (
	ejectedBit = 1
	pinnedBit  = 2
)

type rec struct {
	state   atomic.Uint64
	lag     atomic.Uint32
	inUse   atomic.Uint32
	next    *rec
	shields [MaxShields]atomic.Uint64
}

// Domain is a PEBR reclamation domain.
type Domain struct {
	epoch atomic.Uint64
	// minEpoch caches the oldest pinned, non-ejected guard epoch as of the
	// last Collect pass (the pass already walks every record, so the cache
	// is free). Stats reads it instead of re-walking the record list,
	// making snapshots O(1) — the admin endpoint polls Stats on every
	// scrape across every shard, so the walk was per-request work.
	minEpoch atomic.Uint64
	threads  atomic.Pointer[rec]
	g        smr.Garbage
	sm       smr.ScanMeter
	budget   smr.Budget
	guards   atomic.Int64 // live (unfinished) guards: the H of the adaptive threshold

	// orphans holds epoch-tagged bags abandoned by finished guards,
	// adopted by the next Collect. See ebr.Domain for the design; the
	// entries keep their retire epochs so adoption preserves the freeing
	// rule, and shield scans cover them like any other bag entry.
	orphanMu sync.Mutex
	orphanN  atomic.Int32
	orphans  []entry

	// CollectEvery, if set > 0 before use, pins the fixed per-guard
	// cadence: one collection attempt every CollectEvery retires. When
	// <= 0 (the zero value and the NewDomain default) the cadence is
	// adaptive: a guard collects when the domain-wide retired total (the
	// shared smr.Budget) reaches max(DefaultCollectEvery, k·guards).
	// Patience overrides the ejection patience if set before use.
	CollectEvery int
	Patience     uint32

	ejections atomic.Int64
}

// NewDomain creates a PEBR domain with the adaptive collection cadence.
func NewDomain() *Domain {
	d := &Domain{Patience: DefaultPatience}
	d.epoch.Store(2)
	d.minEpoch.Store(2)
	return d
}

// Unreclaimed returns the number of retired-but-unfreed nodes.
func (d *Domain) Unreclaimed() int64 { return d.g.Unreclaimed() }

// PeakUnreclaimed returns the peak retired-but-unfreed count.
func (d *Domain) PeakUnreclaimed() int64 { return d.g.PeakUnreclaimed() }

// Ejections returns the cumulative number of thread neutralizations.
func (d *Domain) Ejections() int64 { return d.ejections.Load() }

// Stats returns an observability snapshot of the domain. EpochLag is the
// distance from the global epoch to the slowest pinned, non-ejected guard
// as of the last Collect pass (0 when nothing was pinned then). Reading
// the cached minimum instead of walking the record list keeps Stats O(1);
// the lag is stale by at most one collection interval, which is also how
// often the value can change meaningfully.
func (d *Domain) Stats() smr.Stats {
	e := d.epoch.Load()
	min := d.minEpoch.Load()
	if min == 0 || min > e {
		// Zero-value domain that has never collected, or the epoch was
		// read before a concurrent Collect's advance was cached: clamp so
		// the lag never underflows.
		min = e
	}
	st := smr.Stats{
		Scheme:        "pebr",
		RetiredBudget: d.budget.Load(),
		Epoch:         e,
		EpochLag:      e - min,
		Ejections:     d.ejections.Load(),
	}
	smr.FillStats(&st, &d.g, &d.sm)
	return st
}

func (d *Domain) acquireRec() *rec {
	d.guards.Add(1)
	// Lazy epoch init for zero-value &Domain{} literals, mirroring
	// ebr.Domain: the collect path never subtracts from the epoch, so this
	// only aligns diagnostics with NewDomain's starting epoch.
	d.epoch.CompareAndSwap(0, 2)
	for r := d.threads.Load(); r != nil; r = r.next {
		if r.inUse.Load() == 0 && r.inUse.CompareAndSwap(0, 1) {
			return r
		}
	}
	r := &rec{}
	r.inUse.Store(1)
	for {
		h := d.threads.Load()
		r.next = h
		if d.threads.CompareAndSwap(h, r) {
			return r
		}
	}
}

type entry struct {
	r     smr.Retired
	epoch uint64
}

// pushOrphans hands a finished guard's leftover bag to the domain.
func (d *Domain) pushOrphans(bag []entry) {
	d.orphanMu.Lock()
	d.orphans = append(d.orphans, bag...)
	d.orphanN.Store(int32(len(d.orphans)))
	d.orphanMu.Unlock()
}

// adoptOrphans appends all orphaned entries to dst, clears the list, and
// returns dst. The atomic count makes the common empty case lock-free.
func (d *Domain) adoptOrphans(dst []entry) []entry {
	if d.orphanN.Load() == 0 {
		return dst
	}
	d.orphanMu.Lock()
	dst = append(dst, d.orphans...)
	d.orphans = d.orphans[:0]
	d.orphanN.Store(0)
	d.orphanMu.Unlock()
	return dst
}

// Records reports the size of the guard-record list: total records ever
// created and how many are currently held by live guards. See
// ebr.Domain.Records.
func (d *Domain) Records() (total, live int) {
	for r := d.threads.Load(); r != nil; r = r.next {
		total++
		if r.inUse.Load() != 0 {
			live++
		}
	}
	return total, live
}

// Guard is a per-worker PEBR handle implementing smr.Guard.
type Guard struct {
	d       *Domain
	r       *rec
	bag     []entry
	retires int
	budget  smr.BudgetCache
	scratch []uint64 // reusable sorted shield snapshot
}

// NewGuard returns a guard with shield slots for the smr.Guard protocol.
// slots must be at most MaxShields.
func (d *Domain) NewGuard(slots int) smr.Guard { return d.NewGuardPEBR(slots) }

// NewGuardPEBR returns a concretely-typed guard.
func (d *Domain) NewGuardPEBR(slots int) *Guard {
	if slots > MaxShields {
		panic("pebr: too many shield slots requested")
	}
	return &Guard{d: d, r: d.acquireRec(), budget: smr.NewBudgetCache(&d.budget)}
}

// Pin enters a critical section at the current epoch, clearing any
// previous ejection.
func (g *Guard) Pin() {
	e := g.d.epoch.Load()
	g.r.state.Store(e<<2 | pinnedBit)
}

// Unpin leaves the critical section.
func (g *Guard) Unpin() {
	g.r.state.Store(g.r.state.Load() &^ uint64(pinnedBit|ejectedBit))
}

// Track announces that shield slot i protects ref, then validates that
// this guard has not been ejected. On false the caller must not
// dereference ref and must restart its operation (Unpin, Pin, retry);
// previously tracked nodes remain protected by their shields.
func (g *Guard) Track(i int, ref uint64) bool {
	g.r.shields[i].Store(ref)
	// fence(SC) — implicit; orders the shield store before the state load.
	return g.r.state.Load()&ejectedBit == 0
}

// ClearShields revokes all shield announcements. Call when a worker goes
// idle so stale shields do not pin dead nodes indefinitely.
func (g *Guard) ClearShields() {
	for i := range g.r.shields {
		g.r.shields[i].Store(0)
	}
}

// Ejected reports whether the guard has been neutralized since Pin.
func (g *Guard) Ejected() bool { return g.r.state.Load()&ejectedBit != 0 }

// Retire schedules a node for freeing.
func (g *Guard) Retire(ref uint64, dealloc smr.Deallocator) {
	g.bag = append(g.bag, entry{smr.Retired{Ref: ref, D: dealloc}, g.d.epoch.Load()})
	g.d.g.AddRetired(1)
	g.retires++
	if g.shouldCollect(g.budget.Retire()) {
		g.Collect()
	}
}

// shouldCollect decides the collection cadence: the fixed per-guard
// modulus when CollectEvery is positive, otherwise the adaptive threshold
// max(DefaultCollectEvery, k·guards) applied to the domain-wide retired
// total, consulted only on the budget cache's batch boundaries (see
// ebr.Guard.shouldCollect for the amortization argument).
func (g *Guard) shouldCollect(published bool) bool {
	if every := g.d.CollectEvery; every > 0 {
		return g.retires%every == 0
	}
	return published &&
		g.budget.Total() >= int64(smr.ReclaimThreshold(int(g.d.guards.Load()), DefaultCollectEvery))
}

// Collect attempts to advance the epoch — ejecting threads that have
// lagged for more than Patience passes — and frees every bag entry that
// is old enough and not covered by any shield.
func (g *Guard) Collect() {
	d := g.d
	start := time.Now()
	g.bag = d.adoptOrphans(g.bag)
	e := d.epoch.Load()
	min := e
	blocked := false
	for r := d.threads.Load(); r != nil; r = r.next {
		st := r.state.Load()
		if st&pinnedBit == 0 || st&ejectedBit != 0 {
			continue // unpinned and ejected threads do not block advance
		}
		ep := st >> 2
		if ep >= e {
			r.lag.Store(0)
			continue
		}
		// Lagging pinned thread: eject after Patience observations.
		if r.lag.Add(1) > d.Patience {
			if r.state.CompareAndSwap(st, st|ejectedBit) {
				d.ejections.Add(1)
				r.lag.Store(0)
				continue // now ejected; no longer blocks
			}
		}
		blocked = true
		if ep < min {
			min = ep
		}
	}
	if !blocked {
		if d.epoch.CompareAndSwap(e, e+1) {
			min = e + 1 // nothing pinned behind; the new epoch has no lag
		}
	}
	// Publish the walk's result for O(1) Stats snapshots. Concurrent
	// collectors may interleave stores; any of their values is a valid
	// recent observation, so last-writer-wins is fine for a gauge.
	d.minEpoch.Store(min)
	// Snapshot shields into a reusable sorted buffer: ejected (and all
	// other) threads' shielded nodes stay unreclaimed, like hazard
	// pointers. Sorted-slice + binary search mirrors the HP/HP++ scan.
	g.scratch = g.scratch[:0]
	for r := d.threads.Load(); r != nil; r = r.next {
		for i := range r.shields {
			if v := r.shields[i].Load(); v != 0 {
				g.scratch = append(g.scratch, v)
			}
		}
	}
	slices.Sort(g.scratch)
	kept := g.bag[:0]
	freed := int64(0)
	for _, en := range g.bag {
		_, shielded := slices.BinarySearch(g.scratch, en.r.Ref)
		if !shielded && en.epoch+2 <= min {
			en.r.Free()
			freed++
		} else {
			kept = append(kept, en)
		}
	}
	g.bag = kept
	if freed > 0 {
		d.g.AddFreed(freed)
	}
	g.budget.Freed(freed)
	d.sm.AddScan(time.Since(start).Nanoseconds())
}

// Finish retires the guard itself: shields are revoked (a finished guard
// must not pin dead nodes forever), the final collection attempt runs, any
// survivors go to the domain's orphan list, and the guard record is
// released for reuse. The stale-lag counter is cleared so a recycled
// record does not inherit its previous owner's ejection history. The
// guard must not be used after Finish.
func (g *Guard) Finish() {
	g.ClearShields()
	g.Unpin()
	g.Collect() // also flushes the budget cache via Freed
	if len(g.bag) > 0 {
		g.d.pushOrphans(g.bag)
		g.bag = nil
	}
	g.budget.Flush()
	g.r.lag.Store(0)
	g.d.guards.Add(-1)
	g.r.inUse.Store(0)
	g.r = nil
}

// BagLen returns the number of locally retired, unfreed nodes.
func (g *Guard) BagLen() int { return len(g.bag) }

var _ smr.GuardDomain = (*Domain)(nil)
